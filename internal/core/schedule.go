// Package core implements the refresh scheduling policies evaluated in
// Chang et al., HPCA 2014: the paper's contributions (DARP, and the
// controller side of SARP/DSARP) plus every baseline it compares against
// (all-bank refresh, round-robin per-bank refresh, elastic refresh, DDR4
// fine granularity refresh, and adaptive refresh).
//
// A policy is a sched.RefreshPolicy: each DRAM cycle the controller offers
// it the channel's command-bus slot. SARP itself is a DRAM-device option
// (dram.Options.SARP) — SARPab/SARPpb/DSARP are a device with SARP enabled
// paired with the AllBank/PerBank/DARP scheduler respectively; Kind
// captures the pairing.
package core

import "fmt"

// bankSchedule tracks per-bank refresh debt against the nominal per-bank
// refresh schedule. Bank b of a rank nominally receives one REFpb every
// 8*tREFIpb (= tREFIab), staggered by b*tREFIpb to match the round-robin
// order. The JEDEC flexibility DARP exploits (paper §4.2.1 and erratum)
// allows each bank to run up to maxFlex refreshes behind (postponed) or
// ahead (pulled in) of that schedule.
type bankSchedule struct {
	tREFIpb int64
	period  int64 // per-bank refresh period: banks * tREFIpb
	banks   int
	flex    int64   // postpone/pull-in bound (maxFlex, or the D1 ablation's)
	phase   []int64 // nominal time of bank b's first refresh
	issued  []int64 // refreshes issued per bank

	// Precomputed thresholds: owed(b, t) crosses the flex bounds exactly at
	// these absolute cycles, so the per-cycle credit checks are compares
	// instead of divisions. Maintained by record().
	forcedAt    []int64 // earliest t with mustRefresh(b, t)
	pullOkAt    []int64 // earliest t with canPullIn(b, t)
	minForcedAt int64   // min over banks of forcedAt (rank-level fast path)
}

// maxFlex is the number of refreshes a bank may be postponed or pulled in,
// per the DDR JEDEC standard (paper §4.2.1) and the erratum's corrected
// 0 <= ref_credit <= 8 rule.
const maxFlex = 8

func newBankSchedule(banks int, tREFIpb int64, flex, offset int64) *bankSchedule {
	if flex <= 0 {
		flex = maxFlex
	}
	s := &bankSchedule{
		tREFIpb:  tREFIpb,
		period:   int64(banks) * tREFIpb,
		banks:    banks,
		flex:     flex,
		phase:    make([]int64, banks),
		issued:   make([]int64, banks),
		forcedAt: make([]int64, banks),
		pullOkAt: make([]int64, banks),
	}
	for b := 0; b < banks; b++ {
		s.phase[b] = offset + int64(b)*tREFIpb
		s.recalcThresholds(b)
	}
	s.recalcMinForced()
	return s
}

// recalcThresholds rederives bank b's credit-crossing cycles from its issue
// count: mustRefresh first holds once due reaches issued+flex, canPullIn
// once due exceeds issued-flex (immediately, while issued < flex).
func (s *bankSchedule) recalcThresholds(b int) {
	s.forcedAt[b] = s.phase[b] + (s.issued[b]+s.flex-1)*s.period
	if k := s.issued[b] - s.flex; k < 0 {
		s.pullOkAt[b] = -1 << 62
	} else {
		s.pullOkAt[b] = s.phase[b] + k*s.period
	}
}

func (s *bankSchedule) recalcMinForced() {
	m := s.forcedAt[0]
	for _, t := range s.forcedAt[1:] {
		if t < m {
			m = t
		}
	}
	s.minForcedAt = m
}

// due is the number of nominal refresh slots for bank b that have passed by
// cycle now.
func (s *bankSchedule) due(b int, now int64) int64 {
	if now < s.phase[b] {
		return 0
	}
	return (now-s.phase[b])/s.period + 1
}

// owed is the bank's refresh debt: positive = behind schedule (postponed),
// negative = ahead (pulled in).
func (s *bankSchedule) owed(b int, now int64) int64 { return s.due(b, now) - s.issued[b] }

// canPostpone reports whether bank b's next due refresh may be postponed.
func (s *bankSchedule) canPostpone(b int, now int64) bool { return now < s.forcedAt[b] }

// mustRefresh reports whether bank b has exhausted its postponement credit.
func (s *bankSchedule) mustRefresh(b int, now int64) bool { return now >= s.forcedAt[b] }

// canPullIn reports whether bank b may be refreshed ahead of schedule.
func (s *bankSchedule) canPullIn(b int, now int64) bool { return now >= s.pullOkAt[b] }

// record notes a refresh issued to bank b.
func (s *bankSchedule) record(b int) {
	s.issued[b]++
	s.recalcThresholds(b)
	s.recalcMinForced()
}

// slotBank returns the bank whose nominal refresh slot contains cycle now
// (the round-robin target "R" of the paper's Fig. 8).
func (s *bankSchedule) slotBank(now int64) int {
	return int((now / s.tREFIpb) % int64(s.banks))
}

func (s *bankSchedule) String() string {
	return fmt.Sprintf("bankSchedule{banks=%d tREFIpb=%d issued=%v}", s.banks, s.tREFIpb, s.issued)
}

// phaseOffset derives a deterministic refresh-timer phase in [0, mod) from
// a seed. Channels get different seeds, so their refresh schedules
// decorrelate the way independent per-controller timers do in hardware;
// without this, all channels lock the same rank index simultaneously and a
// multi-channel access cluster always sees the worst case.
func phaseOffset(seed, mod int64) int64 {
	if mod <= 0 {
		return 0
	}
	x := uint64(seed) * 0x9e3779b97f4a7c15
	x ^= x >> 29
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 32
	return int64(x % uint64(mod))
}
