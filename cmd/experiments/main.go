// Command experiments regenerates the tables and figures of Chang et al.,
// HPCA 2014 (see DESIGN.md §3 for the experiment index).
//
// Usage:
//
//	experiments [-run all|fig5|fig6|fig7|fig12|fig13|fig14|fig15|fig16|
//	             table2|table3|table4|table5|table6|breakdown|ablations]
//	            [-scale default|paper] [-percat N] [-measure N] [-seed N]
//	            [-parallel N] [-store DIR] [-cpuprofile F] [-memprofile F] [-v]
//
// With -store, every completed simulation is persisted to a
// content-addressed result store as it finishes, and consulted before
// simulating: re-running the same experiments against a warm store costs
// no simulation time, and an interrupted sweep resumes where it stopped.
// SIGINT stops gracefully — in-flight simulations finish and reach the
// store before the process exits with status 130.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"dsarp/internal/exp"
	"dsarp/internal/sim"
	"dsarp/internal/store"
	"dsarp/internal/timing"
)

func main() {
	// All work happens in mainImpl so its deferred profile teardown runs
	// before the process exits, on every path.
	os.Exit(mainImpl())
}

func mainImpl() int {
	var (
		run      = flag.String("run", "all", "experiment to run (comma-separated), or 'all'")
		scale    = flag.String("scale", "default", "experiment scale: default | paper")
		percat   = flag.Int("percat", 0, "override workloads per intensity category")
		sens     = flag.Int("sensitivity", 0, "override sensitivity workload count")
		measure  = flag.Int64("measure", 0, "override measurement window (DRAM cycles)")
		warmup   = flag.Int64("warmup", 0, "override warmup (DRAM cycles)")
		seed     = flag.Int64("seed", 0, "override workload seed")
		parallel = flag.Int("parallel", 0, "concurrent simulations (0 = one per CPU, 1 = serial)")
		storeDir = flag.String("store", "", "persist per-simulation results in this content-addressed store directory")
		storeMax = flag.Int64("store-max-mb", 0, "store size cap in MiB (0 = unlimited)")
		engine   = flag.String("engine", "event", "simulation engine: event (clock-skipping) or cycle (reference stepper); tables are bit-identical")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file on exit")
		verbose  = flag.Bool("v", false, "print per-simulation progress")
		csvDir   = flag.String("csv", "", "also write each experiment's data series to this directory as CSV")
	)
	flag.Parse()

	opts := exp.Defaults()
	if *scale == "paper" {
		opts = exp.Paper()
	}
	if *percat > 0 {
		opts.PerCategory = *percat
	}
	if *sens > 0 {
		opts.Sensitivity = *sens
	}
	if *measure > 0 {
		opts.Measure = *measure
	}
	if *warmup > 0 {
		opts.Warmup = *warmup
	}
	if *seed != 0 {
		opts.Seed = *seed
	}
	opts.Parallelism = *parallel
	eng, err := sim.ParseEngine(*engine)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		return 2
	}
	opts.Engine = eng
	if *storeDir != "" {
		st, err := store.Open(*storeDir, store.Options{MaxBytes: *storeMax << 20})
		if err != nil {
			fmt.Fprintf(os.Stderr, "%v\n", err)
			return 1
		}
		opts.Store = st
	}
	if *verbose {
		opts.Progress = func(done, _ int, label string) {
			fmt.Fprintf(os.Stderr, "[%4d] %s\n", done, label)
		}
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
		}()
	}

	r := exp.NewRunner(opts)

	// First SIGINT: stop scheduling new simulations; the ones in flight
	// finish and reach the store, so a rerun with the same -store resumes
	// instead of restarting. Second SIGINT: exit immediately (completed
	// store writes are atomic and survive).
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigc
		fmt.Fprintln(os.Stderr, "interrupt: finishing in-flight simulations (^C again to abort)")
		r.Interrupt()
		<-sigc
		os.Exit(130)
	}()

	selected := map[string]bool{}
	for _, name := range strings.Split(*run, ",") {
		selected[strings.TrimSpace(strings.ToLower(name))] = true
	}
	all := selected["all"]

	type experiment struct {
		name string
		fn   func() fmt.Stringer
	}
	experiments := []experiment{
		{"fig5", func() fmt.Stringer { return r.Fig5() }},
		{"fig6", func() fmt.Stringer { return r.Fig6() }},
		{"fig7", func() fmt.Stringer { return r.Fig7() }},
		{"fig12", func() fmt.Stringer { return multi{r.Fig12(timing.Gb8), r.Fig12(timing.Gb16), r.Fig12(timing.Gb32)} }},
		{"table2", func() fmt.Stringer { return r.Table2() }},
		{"fig13", func() fmt.Stringer { return r.Fig13() }},
		{"breakdown", func() fmt.Stringer { return r.DARPBreakdown() }},
		{"fig14", func() fmt.Stringer { return r.Fig14() }},
		{"fig15", func() fmt.Stringer { return r.Fig15() }},
		{"table3", func() fmt.Stringer { return r.Table3() }},
		{"table4", func() fmt.Stringer { return r.Table4() }},
		{"table5", func() fmt.Stringer { return r.Table5() }},
		{"table6", func() fmt.Stringer { return r.Table6() }},
		{"fig16", func() fmt.Stringer { return r.Fig16() }},
		{"ablations", func() fmt.Stringer { return r.Ablations() }},
		{"pausing", func() fmt.Stringer { return r.PausingComparison() }},
	}

	ran := 0
	for _, e := range experiments {
		if !all && !selected[e.name] {
			continue
		}
		start := time.Now()
		res := e.fn()
		if r.Interrupted() {
			// The experiment came back with holes where skipped simulations
			// would be; its table is meaningless. Report what was saved
			// instead of printing it.
			fmt.Fprintf(os.Stderr, "interrupted during %s: %d simulations completed", e.name, r.SimsRun())
			if opts.Store != nil {
				fmt.Fprintf(os.Stderr, ", flushed to %s — rerun with the same -store to resume", opts.Store.Dir())
			}
			fmt.Fprintln(os.Stderr)
			return 130
		}
		fmt.Println(res.String())
		if *csvDir != "" {
			if err := writeCSVs(*csvDir, e.name, res); err != nil {
				fmt.Fprintf(os.Stderr, "csv export of %s failed: %v\n", e.name, err)
			}
		}
		if *verbose {
			fmt.Fprintf(os.Stderr, "%s took %v\n", e.name, time.Since(start).Round(time.Millisecond))
		}
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no experiment matched %q; see -h\n", *run)
		return 2
	}
	return 0
}

// writeCSVs exports any experiment result that carries exportable series.
func writeCSVs(dir, name string, res fmt.Stringer) error {
	if m, ok := res.(multi); ok {
		for i, sub := range m {
			if w, ok := sub.(exp.CSVWritable); ok {
				if err := exp.WriteCSV(dir, fmt.Sprintf("%s_%d", name, i), w); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if w, ok := res.(exp.CSVWritable); ok {
		return exp.WriteCSV(dir, name, w)
	}
	return nil
}

// multi concatenates several printable results.
type multi []fmt.Stringer

func (m multi) String() string {
	parts := make([]string, len(m))
	for i, s := range m {
		parts[i] = s.String()
	}
	return strings.Join(parts, "\n")
}
