// Command experiments regenerates the tables and figures of Chang et al.,
// HPCA 2014 (see DESIGN.md §3 for the experiment index). The experiment
// set is the exp package's declarative registry; -list prints it.
//
// Usage:
//
//	experiments [-list] [-only name[,name...]] [-run all|<names>]
//	            [-scale default|paper] [-percat N] [-measure N] [-seed N]
//	            [-parallel N] [-store DIR] [-cpuprofile F] [-memprofile F] [-v]
//
// -only and -run both select experiments by registry name (-only wins if
// both are given); the default runs everything in registry order.
//
// With -store, every completed simulation is persisted to a
// content-addressed result store as it finishes, and consulted before
// simulating: re-running the same experiments against a warm store costs
// no simulation time, and an interrupted sweep resumes where it stopped.
// -list reports, per experiment, how many of its simulations are already
// warm in the store — a cheap resume/progress probe. SIGINT stops
// gracefully — in-flight simulations finish and reach the store before the
// process exits with status 130.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"dsarp/internal/exp"
	"dsarp/internal/sim"
	"dsarp/internal/store"
)

func main() {
	// All work happens in mainImpl so its deferred profile teardown runs
	// before the process exits, on every path.
	os.Exit(mainImpl())
}

func mainImpl() int {
	var (
		run      = flag.String("run", "all", "experiments to run (comma-separated registry names), or 'all'")
		only     = flag.String("only", "", "run only these registry names (overrides -run)")
		list     = flag.Bool("list", false, "list registry experiments with spec counts (and store warm status with -store), then exit")
		scale    = flag.String("scale", "default", "experiment scale: default | paper")
		percat   = flag.Int("percat", 0, "override workloads per intensity category")
		sens     = flag.Int("sensitivity", 0, "override sensitivity workload count")
		measure  = flag.Int64("measure", 0, "override measurement window (DRAM cycles)")
		warmup   = flag.Int64("warmup", 0, "override warmup (DRAM cycles)")
		seed     = flag.Int64("seed", 0, "override workload seed")
		parallel = flag.Int("parallel", 0, "concurrent simulations (0 = one per CPU, 1 = serial)")
		storeDir = flag.String("store", "", "persist per-simulation results in this content-addressed store directory")
		storeMax = flag.Int64("store-max-mb", 0, "store size cap in MiB (0 = unlimited)")
		engine   = flag.String("engine", "event", "simulation engine: event (clock-skipping) or cycle (reference stepper); tables are bit-identical")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file on exit")
		verbose  = flag.Bool("v", false, "print per-simulation progress")
		csvDir   = flag.String("csv", "", "also write each experiment's data series to this directory as CSV")
	)
	flag.Parse()

	opts := exp.Defaults()
	if *scale == "paper" {
		opts = exp.Paper()
	}
	if *percat > 0 {
		opts.PerCategory = *percat
	}
	if *sens > 0 {
		opts.Sensitivity = *sens
	}
	if *measure > 0 {
		opts.Measure = *measure
	}
	if *warmup > 0 {
		opts.Warmup = *warmup
	}
	if *seed != 0 {
		opts.Seed = *seed
	}
	opts.Parallelism = *parallel
	eng, err := sim.ParseEngine(*engine)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		return 2
	}
	opts.Engine = eng
	if *storeDir != "" {
		st, err := store.Open(*storeDir, store.Options{
			MaxBytes:   *storeMax << 20,
			Generation: exp.SchemaVersion,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "%v\n", err)
			return 1
		}
		if s := st.Stats(); s.Expired > 0 {
			fmt.Fprintf(os.Stderr, "store: swept %d old-schema entries (%d bytes reclaimed)\n",
				s.Expired, s.ExpiredBytes)
		}
		opts.Store = st
	}
	if *verbose {
		opts.Progress = func(done, _ int, label string) {
			fmt.Fprintf(os.Stderr, "[%4d] %s\n", done, label)
		}
	}

	r := exp.NewRunner(opts)

	if *list {
		listExperiments(r)
		return 0
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
		}()
	}

	// First SIGINT: stop scheduling new simulations; the ones in flight
	// finish and reach the store, so a rerun with the same -store resumes
	// instead of restarting. Second SIGINT: exit immediately (completed
	// store writes are atomic and survive).
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigc
		fmt.Fprintln(os.Stderr, "interrupt: finishing in-flight simulations (^C again to abort)")
		r.Interrupt()
		<-sigc
		os.Exit(130)
	}()

	sel := *run
	if *only != "" {
		sel = *only
	}
	selected := map[string]bool{}
	for _, name := range strings.Split(sel, ",") {
		selected[strings.TrimSpace(strings.ToLower(name))] = true
	}
	all := selected["all"]

	ran := 0
	for _, e := range exp.Experiments() {
		if !all && !selected[e.Name] {
			continue
		}
		start := time.Now()
		res, err := r.RunExperiment(e.Name)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.Name, err)
			return 1
		}
		if r.Interrupted() {
			// The run stopped before every simulation completed; no table
			// was assembled. Report what was saved instead.
			fmt.Fprintf(os.Stderr, "interrupted during %s: %d simulations completed", e.Name, r.SimsRun())
			if opts.Store != nil {
				fmt.Fprintf(os.Stderr, ", flushed to %s — rerun with the same -store to resume", opts.Store.Dir())
			}
			fmt.Fprintln(os.Stderr)
			return 130
		}
		fmt.Println(res.String())
		if *csvDir != "" {
			if err := writeCSVs(*csvDir, e.Name, res); err != nil {
				fmt.Fprintf(os.Stderr, "csv export of %s failed: %v\n", e.Name, err)
			}
		}
		if *verbose {
			fmt.Fprintf(os.Stderr, "%s took %v\n", e.Name, time.Since(start).Round(time.Millisecond))
		}
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no experiment matched %q; -list shows the registry\n", sel)
		return 2
	}
	return 0
}

// listExperiments prints the registry: names, titles, spec counts, and —
// when a store is configured — how much of each experiment is already
// warm, making -list a cheap resume/progress probe for long sweeps.
func listExperiments(r *exp.Runner) {
	st := r.Options().Store
	for _, e := range exp.Experiments() {
		specs := e.Specs(r)
		line := fmt.Sprintf("%-10s %4d specs", e.Name, len(specs))
		if st != nil {
			warm := exp.WarmCount(st, specs)
			pct := 0.0
			if len(specs) > 0 {
				pct = 100 * float64(warm) / float64(len(specs))
			}
			line += fmt.Sprintf(", %4d warm (%3.0f%%)", warm, pct)
		}
		fmt.Printf("%s  %s\n", line, e.Title)
	}
}

// writeCSVs exports any experiment result that carries exportable series.
func writeCSVs(dir, name string, res fmt.Stringer) error {
	if m, ok := res.(exp.MultiCSV); ok {
		for i, sub := range m.CSVParts() {
			if err := exp.WriteCSV(dir, fmt.Sprintf("%s_%d", name, i), sub); err != nil {
				return err
			}
		}
		return nil
	}
	if w, ok := res.(exp.CSVWritable); ok {
		return exp.WriteCSV(dir, name, w)
	}
	return nil
}
