// Command fleet reproduces one registry experiment across N dsarpd
// workers, fault-tolerantly: it health-checks the workers, dispatches
// each spec to the least-loaded live one, retries transient failures
// (429 backpressure, 5xx, timeouts, dropped connections, worker death)
// with capped exponential backoff against the survivors, and assembles
// the experiment's table locally — byte-identical to a single-node run,
// because the table is a pure function of content-addressed results.
//
// Usage:
//
//	fleet -addrs http://host1:8080,http://host2:8080 -experiment table2
//	      [-journal run.journal] [-store DIR [-store-max-mb N]]
//	      [-scale default|paper] [-percat N] [-sensitivity N]
//	      [-warmup N] [-measure N] [-seed N] [-engine event|cycle]
//	      [-timeout DUR] [-concurrency N] [-max-attempts N] [-replicas R]
//	      [-trace run.jsonl] [-progress 10s]
//	      [-log-format text|json] [-log-level info]
//	fleet -trace-report run.jsonl
//
// -replicas mirrors the workers' own replication factor: dispatch is
// ring-affine, preferring each spec's rendezvous owners among -addrs so
// warm state lands where the workers' replication tier (dsarpd -peers)
// and future reruns will look. At the end of a run, workers that report
// a replication section in /v1/stats are summarized on stderr.
//
// The scale flags mirror dsarpd's: the orchestrator enumerates the
// experiment's specs locally at this scale, so it needs no agreement
// with the workers' own flags — specs travel fully resolved.
//
// -journal names an append-only run journal: if the command dies (or is
// interrupted), rerunning it with the same journal resumes where it
// left off instead of starting over. -store keeps fetched results in a
// local content-addressed store, so a resumed run re-dispatches nothing
// that already landed.
//
// -trace appends the run's trace-of-record to a JSONL flight recorder:
// a run header, then one span per dispatch attempt (worker, status or
// retry cause, wall time) and one terminal span per spec (serving
// source, or the permanent failure). The run's trace ID travels to the
// workers as X-Dsarp-Trace, so a dsarpd started with its own -trace
// records the server side of the same story. -trace-report replays a
// recorded file into per-spec attempt-chain summaries and exits.
//
// -progress logs a heartbeat at the given period: dispatched/done/
// retried/failed so far, the computed-vs-warm split, and an ETA from an
// exponentially-weighted per-dispatch wall time.
//
// The table is written to stdout; progress and fault narration go to
// stderr. Exit status: 0 on success, 1 when specs failed permanently or
// the run was interrupted, 2 on usage errors.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dsarp/internal/exp"
	"dsarp/internal/fleet"
	"dsarp/internal/sim"
	"dsarp/internal/store"
	"dsarp/internal/telemetry"
)

func main() {
	os.Exit(mainImpl())
}

func mainImpl() int {
	var (
		addrs       = flag.String("addrs", "", "comma-separated dsarpd base URLs (required)")
		experiment  = flag.String("experiment", "", "registry experiment to reproduce (required; see cmd/experiments -list)")
		journal     = flag.String("journal", "", "append-only run journal; rerun with the same file to resume")
		storeDir    = flag.String("store", "", "local result store directory ('' disables; resumed runs skip stored specs)")
		storeMaxMB  = flag.Int64("store-max-mb", 0, "local store size cap in MiB (0 = unlimited)")
		engine      = flag.String("engine", "event", "simulation engine baked into enumerated specs")
		warmup      = flag.Int64("warmup", 0, "override warmup (DRAM cycles)")
		measure     = flag.Int64("measure", 0, "override measurement window")
		seed        = flag.Int64("seed", 42, "workload seed")
		scale       = flag.String("scale", "default", "experiment-enumeration scale: default | paper")
		percat      = flag.Int("percat", 0, "override workloads per intensity category")
		sens        = flag.Int("sensitivity", 0, "override sensitivity workload count")
		timeout     = flag.Duration("timeout", 10*time.Minute, "per-dispatch timeout, simulation included")
		concurrency = flag.Int("concurrency", 0, "specs in flight across the fleet (0 = 4 per worker)")
		maxAttempts = flag.Int("max-attempts", 0, "transient retries per spec before giving up (0 = unlimited)")
		replicas    = flag.Int("replicas", 2, "workers' warm-store replication factor (ring-affine dispatch)")
		tracePath   = flag.String("trace", "", "append the run's trace-of-record (JSONL spans) to this file")
		traceReport = flag.String("trace-report", "", "replay a recorded trace file into per-spec attempt chains and exit")
		progress    = flag.Duration("progress", 0, "heartbeat period for progress lines on stderr (0 disables)")
		logFormat   = flag.String("log-format", "text", "log line format: text | json")
		logLevel    = flag.String("log-level", "info", "minimum log level: debug | info | warn | error")
	)
	flag.Parse()
	log.SetFlags(0)

	if *traceReport != "" {
		spans, err := telemetry.ReadTrace(*traceReport)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%v\n", err)
			return 1
		}
		report, err := telemetry.BuildReport(spans)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%v\n", err)
			return 1
		}
		fmt.Print(report.String())
		return 0
	}

	if *addrs == "" || *experiment == "" {
		fmt.Fprintln(os.Stderr, "fleet: -addrs and -experiment are required")
		flag.Usage()
		return 2
	}

	logger, err := telemetry.NewLogger(os.Stderr, *logFormat, *logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		return 2
	}

	opts := exp.Defaults()
	if *scale == "paper" {
		opts = exp.Paper()
	}
	opts.Seed = *seed
	if *percat > 0 {
		opts.PerCategory = *percat
	}
	if *sens > 0 {
		opts.Sensitivity = *sens
	}
	if *warmup > 0 {
		opts.Warmup = *warmup
	}
	if *measure > 0 {
		opts.Measure = *measure
	}
	eng, err := sim.ParseEngine(*engine)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		return 2
	}
	opts.Engine = eng

	cfg := fleet.Config{
		Workers:        strings.Split(*addrs, ","),
		RequestTimeout: *timeout,
		Concurrency:    *concurrency,
		MaxAttempts:    *maxAttempts,
		Replicas:       *replicas,
		Journal:        *journal,
		Log:            logger,
		Progress:       *progress,
	}
	var trace *telemetry.Recorder
	if *tracePath != "" {
		trace, err = telemetry.NewRecorder(*tracePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%v\n", err)
			return 1
		}
		cfg.Trace = trace
	}
	if *storeDir != "" {
		st, err := store.Open(*storeDir, store.Options{
			MaxBytes:   *storeMaxMB << 20,
			Generation: exp.SchemaVersion,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "%v\n", err)
			return 1
		}
		cfg.Store = st
	}
	o, err := fleet.New(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		return 2
	}

	// SIGINT/SIGTERM cancel the run; the journal (if any) resumes it.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	r := exp.NewRunner(opts) // enumeration and assembly only; runs no sims
	table, err := o.RunExperiment(ctx, r, *experiment)
	st := o.Stats()
	// The summary and replication lines stay plain prints: scripts grep
	// them regardless of -log-format.
	log.Printf("fleet: %d dispatched (%d computed, %d affine), %d local hits, %d retries, %d failed",
		st.Dispatched, st.Computed, st.Affine, st.LocalHits, st.Retries, st.Failed)
	if line, ok := o.ReplicationSummary(context.Background()); ok {
		log.Printf("fleet: %s", line)
	}
	if trace != nil {
		if cerr := trace.Close(); cerr != nil {
			logger.Warn("flight recorder close", "err", cerr)
		} else if werr := trace.Err(); werr != nil {
			logger.Warn("flight recorder dropped spans", "err", werr)
		} else {
			logger.Info("trace written", "path", *tracePath)
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		if ctx.Err() != nil && *journal == "" {
			fmt.Fprintln(os.Stderr, "fleet: hint: pass -journal to make interrupted runs resumable")
		}
		return 1
	}
	fmt.Print(table.String())
	return 0
}
