// Command refreshsim runs one simulation of the DSARP system: a workload of
// synthetic benchmarks on the 8-core / 2-channel DDR3-1333 configuration of
// Chang et al. (HPCA 2014), under a chosen refresh mechanism.
//
// Examples:
//
//	refreshsim -mechanism DSARP -density 32
//	refreshsim -mechanism DSARP -density 8,16,32 -parallel 3
//	refreshsim -mechanism REFpb -workload stream.triad,rand.access,mcf.chase,libq.scan
//	refreshsim -list
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"text/tabwriter"

	"dsarp/internal/core"
	"dsarp/internal/sim"
	"dsarp/internal/timing"
	"dsarp/internal/trace"
	"dsarp/internal/workload"
)

func main() {
	var (
		mech      = flag.String("mechanism", "DSARP", "refresh mechanism (see -list)")
		density   = flag.String("density", "32", "DRAM chip density in Gb (8, 16, 32); comma-separate for a sweep")
		retention = flag.Int("retention", 32, "retention time in ms (32 or 64)")
		benches   = flag.String("workload", "", "comma-separated benchmark names (default: a random intensive mix)")
		cores     = flag.Int("cores", 8, "core count when using a random mix")
		subarrays = flag.Int("subarrays", 8, "subarrays per bank")
		warmup    = flag.Int64("warmup", 50_000, "warmup DRAM cycles")
		measure   = flag.Int64("measure", 200_000, "measured DRAM cycles")
		seed      = flag.Int64("seed", 42, "simulation seed")
		parallel  = flag.Int("parallel", 0, "concurrent simulations in a density sweep (0 = one per CPU)")
		engine    = flag.String("engine", "event", "simulation engine: event (clock-skipping) or cycle (reference stepper); results are bit-identical")
		check     = flag.Bool("check", false, "attach the DRAM protocol checker")
		list      = flag.Bool("list", false, "list mechanisms and benchmarks, then exit")
	)
	flag.Parse()

	if *list {
		fmt.Println("mechanisms:")
		for _, k := range core.Kinds() {
			fmt.Printf("  %s\n", k)
		}
		fmt.Println("benchmarks (MPKI >= 10 is memory-intensive):")
		for _, p := range workload.Library() {
			fmt.Printf("  %-14s MPKI=%-5.4g %s footprint=%dKB\n",
				p.Name, p.MPKI, p.Pattern, p.FootprintBytes>>10)
		}
		return
	}

	kind, err := core.ParseKind(*mech)
	if err != nil {
		fatalf("%v (try -list)", err)
	}

	wl, err := buildWorkload(*benches, *cores, *seed)
	if err != nil {
		fatalf("%v", err)
	}

	densities, err := parseDensities(*density)
	if err != nil {
		fatalf("%v", err)
	}

	ret := timing.Retention32ms
	if *retention == 64 {
		ret = timing.Retention64ms
	}

	eng, err := sim.ParseEngine(*engine)
	if err != nil {
		fatalf("%v", err)
	}

	// Run the sweep on a bounded worker pool; reports print in flag order
	// regardless of completion order, and every simulation is independent,
	// so the output is identical to a serial sweep.
	workers := *parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(densities) {
		workers = len(densities)
	}
	results := make([]sim.Result, len(densities))
	errs := make([]error, len(densities))
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= len(densities) {
					return
				}
				results[i], errs[i] = sim.Run(sim.Config{
					Workload:         wl,
					Mechanism:        kind,
					Density:          densities[i],
					Retention:        ret,
					SubarraysPerBank: *subarrays,
					Engine:           eng,
					Seed:             *seed,
					Warmup:           *warmup,
					Measure:          *measure,
					Check:            *check,
				})
			}
		}()
	}
	wg.Wait()

	for i, res := range results {
		if errs[i] != nil {
			fatalf("%v", errs[i])
		}
		if i > 0 {
			fmt.Println()
		}
		if len(densities) > 1 {
			fmt.Printf("=== density %s ===\n", densities[i])
		}
		report(wl, res)
		if res.CheckErr != nil {
			fatalf("protocol violations:\n%v", res.CheckErr)
		}
	}
}

// parseDensities parses the -density flag: one value or a comma-separated
// sweep.
func parseDensities(s string) ([]timing.Density, error) {
	var out []timing.Density
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad density %q: %v", part, err)
		}
		out = append(out, timing.Density(n))
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no densities given")
	}
	return out, nil
}

func buildWorkload(names string, cores int, seed int64) (workload.Workload, error) {
	if names == "" {
		mixes := workload.IntensiveMixes(1, cores, seed)
		return mixes[0], nil
	}
	var profs []trace.Profile
	for _, name := range strings.Split(names, ",") {
		p, err := workload.ByName(strings.TrimSpace(name))
		if err != nil {
			return workload.Workload{}, err
		}
		profs = append(profs, p)
	}
	return workload.Workload{Name: "custom", Benchmarks: profs}, nil
}

func report(wl workload.Workload, res sim.Result) {
	fmt.Printf("workload %s under %s, %d DRAM cycles measured\n\n",
		wl.Name, res.Mechanism, res.MeasuredCycles)

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "core\tbenchmark\tIPC\tMPKI\tloads\tstores")
	var sumIPC float64
	for i, b := range wl.Benchmarks {
		fmt.Fprintf(w, "%d\t%s\t%.3f\t%.1f\t%d\t%d\n",
			i, b.Name, res.IPC[i], res.MPKI[i], res.Cores[i].Loads, res.Cores[i].Stores)
		sumIPC += res.IPC[i]
	}
	w.Flush()

	fmt.Printf("\nsum IPC              %.3f\n", sumIPC)
	fmt.Printf("DRAM reads/writes    %d / %d\n", res.DRAM.Reads, res.DRAM.Writes)
	fmt.Printf("activates/precharges %d / %d\n", res.DRAM.Acts, res.DRAM.Pres)
	fmt.Printf("refreshes (ab/pb)    %d / %d\n", res.DRAM.RefABs, res.DRAM.RefPBs)
	fmt.Printf("avg read latency     %.1f DRAM cycles\n", res.Sched.AvgReadLatency())
	fmt.Printf("writeback-mode time  %.1f%%\n",
		100*float64(res.Sched.WriteModeCycles)/float64(2*res.MeasuredCycles))
	fmt.Printf("energy per access    %.2f nJ (refresh share %.1f%%)\n",
		res.EnergyPerAccess(), 100*res.Energy.Refresh/res.Energy.Total())
	fmt.Printf("engine skip rate     %.1f%% of cycles simulated\n", 100*res.SkipRate())
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "refreshsim: "+format+"\n", args...)
	os.Exit(1)
}
