// Command dsarpd serves the DSARP simulator over HTTP: single simulations
// (POST /v1/sim), batched sweeps with job tracking and SSE progress
// (POST /v1/sweep, GET /v1/jobs/{id}...), and whole registry experiments
// (GET /v1/experiments, POST /v1/experiments/{name} -> assembled table),
// all deduplicated in flight and persisted in a content-addressed result
// store, so any config is ever simulated once per store — across
// requests, restarts, and clients.
//
// Usage:
//
//	dsarpd [-addr :8080] [-store .dsarp-store] [-store-max-mb N]
//	       [-parallel N] [-max-queue N] [-engine event|cycle]
//	       [-warmup N] [-measure N] [-seed N] [-sim-timeout D]
//	       [-checkpoint-every N]
//	       [-scale default|paper] [-percat N] [-sensitivity N]
//	       [-self URL -peers URL,URL,... [-replicas R]]
//	       [-chaos fail=P,drop=P,stall=P:D,kill=N,diskfail=P,seed=N]
//	       [-debug-addr :6060] [-trace spans.jsonl]
//	       [-log-format text|json] [-log-level info]
//
// -warmup/-measure/-engine only fill fields a submitted spec leaves unset;
// fully-specified specs are served as sent. -scale/-percat/-sensitivity
// set the workload scale behind experiment enumeration: a fleet of dsarpd
// started with the same scale flags enumerates identical specs, so
// workers sharing a -store directory compose into one reproduction.
//
// The store records the exp.SchemaVersion generation: reopening a store
// written under an older schema sweeps its (unreachable) entries at
// startup. Completed results are not retained in RAM — the store is the
// cache — so memory stays flat however many unique specs are served.
//
// Jobs are crash-durable when a store is configured: every job is
// journaled under <store>/jobs, and a restarted dsarpd on the same store
// directory adopts incomplete jobs — same job IDs, full SSE replay,
// unfinished specs re-enqueued. If the store's disk fails mid-flight the
// daemon keeps completing work from memory and reports itself degraded
// on /healthz and /v1/stats instead of dying.
//
// -sim-timeout bounds each simulation's wall clock: a run that exceeds
// it is aborted, its queue slot freed, and the client told 504 (retry
// elsewhere, or resubmit with a bigger budget).
//
// -checkpoint-every N makes simulations resumable (requires a store):
// every run persists its machine state at the warmup boundary and every
// N DRAM cycles of the measurement window, content-addressed under the
// spec's prefix key, and every run first probes the store for the
// deepest usable snapshot to resume from. A watchdog-aborted, killed, or
// re-enqueued run then re-simulates at most N cycles of tail instead of
// the whole window, and extending a spec's measurement window skips the
// entire shared prefix. With -peers, snapshots replicate like results,
// so the retry can land on a different worker.
//
// -peers joins the worker to a replicated warm-store tier: every member
// builds the same rendezvous ring over the member URLs (-self plus
// -peers, order irrelevant, self-inclusion harmless — hand every worker
// the same flat list), each result key is owned by -replicas members
// (default 2), and workers repair each other lazily — a local store miss
// for an owned key is hedge-fetched from the other owners before
// simulating, and every computed result is pushed asynchronously to the
// key's other owners. With R=2 the fleet's warm state survives the
// permanent loss of any single worker. Requires a store.
//
// Observability: GET /metrics on the API port renders the worker's
// Prometheus exposition (queue, runner, store, replication, chaos
// counters). -debug-addr starts a second listener serving the same
// /metrics plus net/http/pprof under /debug/pprof/ — scrape and profile
// traffic stays off the API port's queue accounting. -trace appends a
// serve-side span (worker, status, source, wall time) to a JSONL flight
// recorder for every request that carries an X-Dsarp-Trace header, the
// worker-side half of cmd/fleet -trace. Logs are structured (log/slog);
// -log-format json emits machine-parsable lines, -log-level gates
// verbosity (debug|info|warn|error).
//
// SIGINT/SIGTERM drain gracefully: new submissions get 503, queued work
// finishes and reaches the store, then the process exits.
//
// -chaos injects faults ahead of the /v1 handlers — spurious 500s,
// severed connections, stalled responses, and an optional hard kill
// (os.Exit(137)) after N requests — for exercising fleet orchestrators
// against worker misbehavior. /healthz stays honest throughout.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"dsarp/internal/exp"
	"dsarp/internal/serve"
	"dsarp/internal/sim"
	"dsarp/internal/store"
	"dsarp/internal/telemetry"
)

func main() {
	os.Exit(mainImpl())
}

func mainImpl() int {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		storeDir   = flag.String("store", ".dsarp-store", "result store directory ('' disables persistence)")
		storeMaxMB = flag.Int64("store-max-mb", 0, "store size cap in MiB (0 = unlimited)")
		parallel   = flag.Int("parallel", 0, "concurrent simulations (0 = one per CPU)")
		maxQueue   = flag.Int("max-queue", 256, "max queued+running tasks before 429")
		engine     = flag.String("engine", "event", "default simulation engine for specs that omit one")
		warmup     = flag.Int64("warmup", 0, "default warmup (DRAM cycles) for specs that omit one")
		measure    = flag.Int64("measure", 0, "default measurement window for specs that omit one")
		seed       = flag.Int64("seed", 42, "workload seed for the runner's built-in mixes")
		scale      = flag.String("scale", "default", "experiment-enumeration scale: default | paper")
		percat     = flag.Int("percat", 0, "override workloads per intensity category (experiment enumeration)")
		sens       = flag.Int("sensitivity", 0, "override sensitivity workload count (experiment enumeration)")
		self       = flag.String("self", "", "this worker's base URL as peers address it (required with -peers)")
		peers      = flag.String("peers", "", "comma-separated peer base URLs; joins the replicated warm-store tier")
		replicas   = flag.Int("replicas", 2, "warm-store replication factor R (with -peers)")
		drainSecs  = flag.Int("drain-timeout", 60, "seconds to wait for in-flight work on shutdown")
		simTimeout = flag.Duration("sim-timeout", 0, "wall-clock budget per simulation (0 = unlimited); exceeding it aborts the run with a retryable 504")
		ckptEvery  = flag.Int64("checkpoint-every", 0, "persist resumable machine-state snapshots every N measure cycles plus the warmup boundary (0 disables; requires -store)")
		chaosSpec  = flag.String("chaos", "", "inject faults for orchestrator testing, e.g. 'fail=0.1,drop=0.05,stall=0.1:2s,kill=100,diskfail=0.2,seed=7'")
		debugAddr  = flag.String("debug-addr", "", "side listener for /metrics and /debug/pprof ('' disables)")
		tracePath  = flag.String("trace", "", "append serve-side spans for X-Dsarp-Trace requests to this JSONL file")
		logFormat  = flag.String("log-format", "text", "log line format: text | json")
		logLevel   = flag.String("log-level", "info", "minimum log level: debug | info | warn | error")
	)
	flag.Parse()

	logger, err := telemetry.NewLogger(os.Stderr, *logFormat, *logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		return 2
	}

	opts := exp.Defaults()
	if *scale == "paper" {
		opts = exp.Paper()
	}
	opts.Seed = *seed
	if *percat > 0 {
		opts.PerCategory = *percat
	}
	if *sens > 0 {
		opts.Sensitivity = *sens
	}
	if *warmup > 0 {
		opts.Warmup = *warmup
	}
	if *measure > 0 {
		opts.Measure = *measure
	}
	eng, err := sim.ParseEngine(*engine)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		return 2
	}
	opts.Engine = eng
	opts.SimTimeout = *simTimeout

	// Chaos is parsed before the store opens: diskfail injects failures
	// into the store's write path, so the hook must exist first.
	chaos, err := serve.ParseChaos(*chaosSpec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		return 2
	}
	if chaos != nil {
		// The kill hook is a hard death, not a drain: exactly what a fleet
		// orchestrator must survive. 137 = 128+SIGKILL, the code a real
		// OOM-kill or kill -9 would yield.
		chaos.Kill = func() {
			logger.Warn("chaos: hard-killing worker (kill threshold reached)")
			os.Exit(137)
		}
		logger.Info("chaos enabled", "spec", *chaosSpec)
	}

	journalDir := ""
	if *storeDir != "" {
		st, err := store.Open(*storeDir, store.Options{
			MaxBytes:   *storeMaxMB << 20,
			Generation: exp.SchemaVersion,
			FailWrites: chaos.FailWrites(),
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "%v\n", err)
			return 1
		}
		opts.Store = st
		// The disk is the cache: don't also retain every result in RAM
		// for the life of the daemon.
		opts.EphemeralResults = true
		// Job journals live beside the entries they reference: adopting a
		// store directory means adopting its unfinished jobs too.
		journalDir = filepath.Join(*storeDir, "jobs")
		if s := st.Stats(); s.Expired > 0 {
			logger.Info("store: swept old-schema entries", "entries", s.Expired, "bytes", s.ExpiredBytes)
		}
		logger.Info("store open", "dir", st.Dir(), "entries", st.Len())
	} else {
		logger.Info("store disabled (results and jobs die with the process)")
	}

	if *ckptEvery > 0 {
		if opts.Store == nil {
			fmt.Fprintln(os.Stderr, "dsarpd: -checkpoint-every requires a -store (snapshots are store entries)")
			return 2
		}
		opts.Checkpoints = true
		opts.CheckpointEvery = *ckptEvery
		logger.Info("checkpoints enabled", "every", *ckptEvery)
	}

	var peerCfg *serve.PeerConfig
	if *peers != "" {
		if *self == "" {
			fmt.Fprintln(os.Stderr, "dsarpd: -peers requires -self (this worker's URL as the peers address it)")
			return 2
		}
		if opts.Store == nil {
			fmt.Fprintln(os.Stderr, "dsarpd: -peers requires a -store (the replicated tier is the store)")
			return 2
		}
		var peerList []string
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peerList = append(peerList, p)
			}
		}
		peerCfg = &serve.PeerConfig{Self: *self, Peers: peerList, Replicas: *replicas}
		logger.Info("replication enabled", "self", *self, "peers", peerList, "replicas", *replicas)
	}

	var trace *telemetry.Recorder
	if *tracePath != "" {
		trace, err = telemetry.NewRecorder(*tracePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%v\n", err)
			return 1
		}
		defer trace.Close()
		logger.Info("flight recorder open", "path", *tracePath)
	}

	reg := telemetry.NewRegistry()
	srv := serve.New(serve.Config{
		Runner:     exp.NewRunner(opts),
		Workers:    *parallel,
		MaxQueue:   *maxQueue,
		Chaos:      chaos,
		JournalDir: journalDir,
		Peer:       peerCfg,
		Log:        logger,
		Metrics:    reg,
		Trace:      trace,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	logger.Info("dsarpd listening", "addr", *addr, "schema", exp.SchemaVersion)

	// The debug listener shares the API port's registry but bypasses its
	// chaos middleware and queue accounting: scrapes and profiles stay
	// honest while the service is saturated or misbehaving on purpose.
	var debugSrv *http.Server
	if *debugAddr != "" {
		dmux := http.NewServeMux()
		dmux.Handle("GET /metrics", reg.Handler())
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		debugSrv = &http.Server{Addr: *debugAddr, Handler: dmux}
		go func() {
			if err := debugSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				logger.Warn("debug listener failed", "addr", *debugAddr, "err", err)
			}
		}()
		logger.Info("debug listener on", "addr", *debugAddr)
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "%v\n", err)
		return 1
	case sig := <-sigc:
		logger.Info("draining (in-flight work finishes and reaches the store)", "signal", sig.String())
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Duration(*drainSecs)*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		logger.Warn("drain incomplete (some queued work abandoned)", "err", err)
	}
	if err := httpSrv.Shutdown(ctx); err != nil {
		logger.Warn("shutdown", "err", err)
	}
	if debugSrv != nil {
		debugSrv.Shutdown(ctx)
	}
	if trace != nil {
		if err := trace.Close(); err != nil {
			logger.Warn("flight recorder close", "err", err)
		}
	}
	logger.Info("dsarpd stopped")
	return 0
}
