// Command dsarpd serves the DSARP simulator over HTTP: single simulations
// (POST /v1/sim), batched sweeps with job tracking and SSE progress
// (POST /v1/sweep, GET /v1/jobs/{id}...), all deduplicated in flight and
// persisted in a content-addressed result store, so any config is ever
// simulated once per store — across requests, restarts, and clients.
//
// Usage:
//
//	dsarpd [-addr :8080] [-store .dsarp-store] [-store-max-mb N]
//	       [-parallel N] [-max-queue N] [-engine event|cycle]
//	       [-warmup N] [-measure N] [-seed N]
//
// -warmup/-measure/-engine only fill fields a submitted spec leaves unset;
// fully-specified specs are served as sent. SIGINT/SIGTERM drain
// gracefully: new submissions get 503, queued work finishes and reaches
// the store, then the process exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dsarp/internal/exp"
	"dsarp/internal/serve"
	"dsarp/internal/sim"
	"dsarp/internal/store"
)

func main() {
	os.Exit(mainImpl())
}

func mainImpl() int {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		storeDir   = flag.String("store", ".dsarp-store", "result store directory ('' disables persistence)")
		storeMaxMB = flag.Int64("store-max-mb", 0, "store size cap in MiB (0 = unlimited)")
		parallel   = flag.Int("parallel", 0, "concurrent simulations (0 = one per CPU)")
		maxQueue   = flag.Int("max-queue", 256, "max queued+running tasks before 429")
		engine     = flag.String("engine", "event", "default simulation engine for specs that omit one")
		warmup     = flag.Int64("warmup", 0, "default warmup (DRAM cycles) for specs that omit one")
		measure    = flag.Int64("measure", 0, "default measurement window for specs that omit one")
		seed       = flag.Int64("seed", 42, "workload seed for the runner's built-in mixes")
		drainSecs  = flag.Int("drain-timeout", 60, "seconds to wait for in-flight work on shutdown")
	)
	flag.Parse()

	opts := exp.Defaults()
	opts.Seed = *seed
	if *warmup > 0 {
		opts.Warmup = *warmup
	}
	if *measure > 0 {
		opts.Measure = *measure
	}
	eng, err := sim.ParseEngine(*engine)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		return 2
	}
	opts.Engine = eng

	if *storeDir != "" {
		st, err := store.Open(*storeDir, store.Options{MaxBytes: *storeMaxMB << 20})
		if err != nil {
			fmt.Fprintf(os.Stderr, "%v\n", err)
			return 1
		}
		opts.Store = st
		log.Printf("store: %s (%d entries)", st.Dir(), st.Len())
	} else {
		log.Printf("store: disabled (results die with the process)")
	}

	srv := serve.New(serve.Config{
		Runner:   exp.NewRunner(opts),
		Workers:  *parallel,
		MaxQueue: *maxQueue,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("dsarpd listening on %s (schema %s)", *addr, exp.SchemaVersion)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "%v\n", err)
		return 1
	case sig := <-sigc:
		log.Printf("%v: draining (in-flight work finishes and reaches the store)", sig)
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Duration(*drainSecs)*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		log.Printf("drain: %v (some queued work abandoned)", err)
	}
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("shutdown: %v", err)
	}
	log.Printf("dsarpd stopped")
	return 0
}
