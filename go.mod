module dsarp

go 1.24
