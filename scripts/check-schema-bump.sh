#!/usr/bin/env bash
# CI tripwire for store-schema discipline — results AND snapshots.
#
# Two content-addressed artifact generations live in the store, each with
# its own version string and its own golden fixture set:
#
#   1. Results. The golden table/figure fixtures under
#      internal/exp/testdata/ pin the simulator's observable behavior,
#      and exp.SchemaVersion salts every result key. If a change alters a
#      golden fixture, the same change MUST bump SchemaVersion —
#      otherwise every warm store keeps serving results computed under
#      the old behavior, silently, forever.
#
#   2. Snapshots. internal/sim/testdata/golden.snap pins the serialized
#      machine-state layout byte-for-byte (TestGoldenSnapshotBytes), and
#      snap.Version salts every checkpoint prefix key and is refused at
#      restore time on mismatch. If the fixture's bytes change, the same
#      change MUST bump snap.Version — otherwise stored snapshots would
#      restore into a machine they no longer describe (or, at best,
#      waste every warm checkpoint without retiring its key).
#
# This script fails when the diff against the given base modifies an
# existing golden fixture without also changing the corresponding version
# line. Newly added fixtures are exempt: they pin behavior that never had
# stored artifacts to go stale.
#
# Usage: scripts/check-schema-bump.sh <base-ref>   (e.g. origin/main)
set -euo pipefail

BASE="${1:?usage: check-schema-bump.sh <base-ref>}"

# version_at <ref> <file> <const-name>: the version string value at a ref.
# Matching the value (not diff lines) means a move/reformat of the const
# without a value change cannot fool the check.
version_at() {
    git show "$1:$2" 2>/dev/null \
        | sed -n "s/^const $3 = \"\(.*\)\"\$/\1/p"
}

# check_generation <label> <fixture-path> <version-file> <const-name>
# Returns 0 when this generation needs no bump or got one; prints the
# failure story and returns 1 otherwise.
check_generation() {
    local label="$1" fixtures="$2" vfile="$3" vconst="$4"
    # --no-renames: a renamed-and-tweaked fixture must show as D+A, not
    # slip through as R (which --diff-filter=MD would exclude).
    local modified
    modified=$(git diff --no-renames --name-only --diff-filter=MD "$BASE"...HEAD -- "$fixtures" || true)
    if [ -z "$modified" ]; then
        echo "schema tripwire [$label]: no golden fixture modified; no bump required"
        return 0
    fi
    local old new
    old=$(version_at "$BASE" "$vfile" "$vconst")
    new=$(version_at HEAD "$vfile" "$vconst")
    if [ -z "$new" ]; then
        echo "schema tripwire [$label]: cannot find $vconst in $vfile at HEAD" >&2
        return 1
    fi
    if [ "$old" != "$new" ]; then
        echo "schema tripwire [$label]: golden fixtures modified AND $vconst bumped ($old -> $new) — OK"
        echo "$modified" | sed 's/^/    /'
        return 0
    fi
    echo "schema tripwire [$label]: FAIL"
    echo
    echo "These golden fixtures changed:"
    echo "$modified" | sed 's/^/    /'
    echo
    echo "...but $vconst ($vfile) did not. A golden change means the"
    echo "stored artifact's bytes changed for the same key, so every warm"
    echo "store would keep serving stale pre-change artifacts. Bump"
    echo "$vconst in the same commit (and state the behavior change in"
    echo "the commit message), or revert the golden change."
    return 1
}

rc=0
check_generation "results" "internal/exp/testdata" "internal/exp/spec.go" "SchemaVersion" || rc=1
check_generation "snapshots" "internal/sim/testdata" "internal/snap/snap.go" "Version" || rc=1
exit $rc
