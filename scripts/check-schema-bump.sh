#!/usr/bin/env bash
# CI tripwire for store-schema discipline.
#
# The golden table/figure fixtures under internal/exp/testdata/ pin the
# simulator's observable behavior, and exp.SchemaVersion salts every
# content-addressed store key. If a change alters a golden fixture, the
# same change MUST bump SchemaVersion — otherwise every warm store keeps
# serving results computed under the old behavior, silently, forever.
#
# This script fails when the diff against the given base modifies an
# existing golden fixture without also changing the SchemaVersion line in
# internal/exp/spec.go. Newly added fixtures are exempt: they pin behavior
# that never had stored results to go stale.
#
# Usage: scripts/check-schema-bump.sh <base-ref>   (e.g. origin/main)
set -euo pipefail

BASE="${1:?usage: check-schema-bump.sh <base-ref>}"
GOLDENS="internal/exp/testdata"

# --no-renames: a renamed-and-tweaked fixture must show as D+A, not slip
# through as R (which -diff-filter=MD would exclude).
modified=$(git diff --no-renames --name-only --diff-filter=MD "$BASE"...HEAD -- "$GOLDENS" || true)
if [ -z "$modified" ]; then
    echo "schema tripwire: no golden fixture modified; no schema bump required"
    exit 0
fi

# Compare the SchemaVersion *value* at base vs head — a diff-line grep
# would be fooled by a move/reformat of the const without a value change.
schema_at() {
    git show "$1:internal/exp/spec.go" 2>/dev/null \
        | sed -n 's/^const SchemaVersion = "\(.*\)"$/\1/p'
}
old_schema=$(schema_at "$BASE")
new_schema=$(schema_at HEAD)
if [ -z "$new_schema" ]; then
    echo "schema tripwire: cannot find SchemaVersion in internal/exp/spec.go at HEAD" >&2
    exit 1
fi
if [ "$old_schema" != "$new_schema" ]; then
    echo "schema tripwire: golden fixtures modified AND exp.SchemaVersion bumped ($old_schema -> $new_schema) — OK"
    echo "$modified"
    exit 0
fi

echo "schema tripwire: FAIL"
echo
echo "These golden fixtures changed:"
echo "$modified" | sed 's/^/    /'
echo
echo "...but exp.SchemaVersion (internal/exp/spec.go) did not. A golden"
echo "change means simulation output changed for the same spec, so every"
echo "warm store would keep serving stale pre-change results. Bump"
echo "SchemaVersion in the same commit (and state the behavior change in"
echo "the commit message), or revert the golden change."
exit 1
