// Package dsarp's root benchmark harness regenerates every table and figure
// of the paper's evaluation (DESIGN.md §3 maps IDs to experiments). Each
// benchmark runs a scaled-down version of the experiment and reports its
// headline numbers as custom metrics; the printed tables land in the
// benchmark log. cmd/experiments reproduces the same tables at larger scale.
//
//	go test -bench=. -benchmem
package dsarp

import (
	"testing"

	"dsarp/internal/core"
	"dsarp/internal/exp"
	"dsarp/internal/sim"
	"dsarp/internal/timing"
	"dsarp/internal/workload"
)

// benchOpts keeps each experiment benchmark in the seconds range: one
// workload per category, 4 cores, short windows. Parallelism is pinned to 1
// so single-thread scheduler performance stays comparable across machines
// and against the seed; BenchmarkTable2_Parallel measures the fan-out.
func benchOpts() exp.Options {
	return exp.Options{
		PerCategory: 1,
		Sensitivity: 1,
		Cores:       4,
		Warmup:      10_000,
		Measure:     50_000,
		Seed:        42,
		Parallelism: 1,
		Densities:   []timing.Density{timing.Gb8, timing.Gb32},
	}
}

func BenchmarkFig5_TRFCabTrend(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exp.NewRunner(benchOpts())
		f := r.Fig5()
		last := f.Points[len(f.Points)-1]
		b.ReportMetric(last.Projection2, "ns@64Gb")
		if i == 0 {
			b.Log("\n" + f.String())
		}
	}
}

func BenchmarkFig6_RefabPerfLoss(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exp.NewRunner(benchOpts())
		f := r.Fig6()
		b.ReportMetric(f.Rows[len(f.Rows)-1].Overall, "loss%@32Gb")
		if i == 0 {
			b.Log("\n" + f.String())
		}
	}
}

func BenchmarkFig7_RefabVsRefpb(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exp.NewRunner(benchOpts())
		f := r.Fig7()
		b.ReportMetric(f.LossAB[len(f.LossAB)-1], "ab_loss%@32Gb")
		b.ReportMetric(f.LossPB[len(f.LossPB)-1], "pb_loss%@32Gb")
		if i == 0 {
			b.Log("\n" + f.String())
		}
	}
}

func BenchmarkFig12_SortedCurves(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exp.NewRunner(benchOpts())
		f := r.Fig12(timing.Gb32)
		best := f.Curves[len(f.Curves)-1].Norm[core.KindDSARP]
		b.ReportMetric((best-1)*100, "best_dsarp%")
		if i == 0 {
			b.Log("\n" + f.String())
		}
	}
}

func BenchmarkTable2_Improvements(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exp.NewRunner(benchOpts())
		t := r.Table2()
		last := t.Rows[len(t.Rows)-1] // DSARP at the highest density
		b.ReportMetric(last.GmeanAB, "dsarp_gmean%_vs_ab")
		b.ReportMetric(last.GmeanPB, "dsarp_gmean%_vs_pb")
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

// BenchmarkTable2_Parallel is BenchmarkTable2_Improvements with the worker
// pool at one worker per CPU; the ratio of the two is the sweep-engine
// speedup on this machine.
func BenchmarkTable2_Parallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opts := benchOpts()
		opts.Parallelism = 0 // one worker per CPU
		r := exp.NewRunner(opts)
		t := r.Table2()
		last := t.Rows[len(t.Rows)-1]
		b.ReportMetric(last.GmeanAB, "dsarp_gmean%_vs_ab")
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

func BenchmarkFig13_AllMechanisms(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exp.NewRunner(benchOpts())
		f := r.Fig13()
		last := len(f.Densities) - 1
		b.ReportMetric(f.Improve[core.KindDSARP][last], "dsarp%@32Gb")
		b.ReportMetric(f.Improve[core.KindNoRef][last], "noref%@32Gb")
		if i == 0 {
			b.Log("\n" + f.String())
		}
	}
}

func BenchmarkDARPBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exp.NewRunner(benchOpts())
		t := r.DARPBreakdown()
		last := t.Rows[len(t.Rows)-1]
		b.ReportMetric(last.OoOGmean, "ooo%@32Gb")
		b.ReportMetric(last.WRGmean, "wr_extra%@32Gb")
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

func BenchmarkFig14_Energy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exp.NewRunner(benchOpts())
		f := r.Fig14()
		b.ReportMetric(f.DSARPReduction[len(f.DSARPReduction)-1], "dsarp_epa_red%@32Gb")
		if i == 0 {
			b.Log("\n" + f.String())
		}
	}
}

func BenchmarkFig15_Intensity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exp.NewRunner(benchOpts())
		f := r.Fig15()
		last := len(f.Densities) - 1
		b.ReportMetric(f.OverAB[100][last], "dsarp%_cat100_vs_ab")
		if i == 0 {
			b.Log("\n" + f.String())
		}
	}
}

func BenchmarkTable3_CoreCount(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exp.NewRunner(benchOpts())
		t := r.Table3()
		b.ReportMetric(t.Rows[len(t.Rows)-1].WSImprove, "ws%@8core")
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

func BenchmarkTable4_TFAW(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exp.NewRunner(benchOpts())
		t := r.Table4()
		b.ReportMetric(t.Improve[0], "sarp%_tfaw5")
		b.ReportMetric(t.Improve[len(t.Improve)-1], "sarp%_tfaw30")
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

func BenchmarkTable5_Subarrays(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exp.NewRunner(benchOpts())
		t := r.Table5()
		b.ReportMetric(t.Improve[0], "sarp%_1sub")
		b.ReportMetric(t.Improve[len(t.Improve)-1], "sarp%_64sub")
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

func BenchmarkTable6_Retention64(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exp.NewRunner(benchOpts())
		t := r.Table6()
		b.ReportMetric(t.Rows[len(t.Rows)-1].GmeanAB, "dsarp_gmean%_vs_ab")
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

func BenchmarkFig16_FGR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exp.NewRunner(benchOpts())
		f := r.Fig16()
		last := len(f.Densities) - 1
		b.ReportMetric(f.Norm[core.KindFGR4x][last], "fgr4x_norm@32Gb")
		b.ReportMetric(f.Norm[core.KindDSARP][last], "dsarp_norm@32Gb")
		if i == 0 {
			b.Log("\n" + f.String())
		}
	}
}

// BenchmarkIdleHeavy pins the clock-skipping engine's win on a
// low-intensity, idle-heavy workload — the regime the event engine targets:
// four compute-bound cores whose long instruction bursts, cache-hit waits,
// and refresh lockouts are provably eventless and skipped wholesale. The
// frac_simulated metric is the fraction of DRAM cycles actually simulated
// (1.0 = pure cycle stepping).
func BenchmarkIdleHeavy(b *testing.B) {
	lib := workload.NonIntensive()
	wl := workload.Workload{Name: "idleheavy", Benchmarks: lib[len(lib)-4:]}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(sim.Config{
			Workload:  wl,
			Mechanism: core.KindREFab,
			Density:   timing.Gb32,
			Seed:      42,
			Warmup:    20_000,
			Measure:   200_000,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.SkipRate(), "frac_simulated")
		b.ReportMetric(res.IPC[0], "ipc0")
	}
}

// BenchmarkSaturated pins the opposite regime from BenchmarkIdleHeavy: an
// all-intensive DSARP workload in which nearly every cycle carries an event,
// so the clock-skipping engine degenerates to plain stepping and performance
// is set entirely by the cost of one stepped cycle (demand scans, DRAM
// legality probes, per-access bookkeeping). frac_simulated close to 1.0
// confirms the run really exercises the stepped path.
func BenchmarkSaturated(b *testing.B) {
	wl := workload.IntensiveMixes(1, 4, 42)[0]
	b.ReportAllocs() // the stepped cycle is supposed to be allocation-free
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(sim.Config{
			Workload:  wl,
			Mechanism: core.KindDSARP,
			Density:   timing.Gb32,
			Seed:      42,
			Warmup:    20_000,
			Measure:   200_000,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.SkipRate(), "frac_simulated")
		b.ReportMetric(res.IPC[0], "ipc0")
	}
}

func BenchmarkAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exp.NewRunner(benchOpts())
		a := r.Ablations()
		if i == 0 {
			b.Log("\n" + a.String())
		}
	}
}
