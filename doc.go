// Package dsarp is a from-scratch Go reproduction of "Improving DRAM
// Performance by Parallelizing Refreshes with Accesses" (Chang, Lee,
// Chishti, Alameldeen, Wilkerson, Kim, Mutlu — HPCA 2014): the DARP and
// SARP refresh mechanisms, every baseline the paper compares against, and
// the full simulation substrate (cycle-level DRAM timing model, FR-FCFS
// memory controller, trace-driven cores, LLC, workload generator, power
// model) needed to regenerate the paper's evaluation.
//
// Start with README.md for usage, DESIGN.md for the system inventory and
// experiment index, and EXPERIMENTS.md for paper-vs-measured results. The
// root package holds only the benchmark harness (bench_test.go), one
// benchmark per paper table/figure.
package dsarp
